#include "chaos/checker.h"

namespace opc {

std::string render_failures(const std::vector<CheckFailure>& failures) {
  std::string out;
  for (const CheckFailure& f : failures) {
    out += "  [" + f.oracle + "] " + f.detail + "\n";
  }
  return out;
}

namespace {

void check_quiescence(CheckContext& ctx, std::vector<CheckFailure>& out) {
  if (!ctx.drained) {
    out.push_back({"quiescence", "drain loop hit its deadline"});
  }
  for (std::uint32_t i = 0; i < ctx.cluster.size(); ++i) {
    const NodeId id(i);
    if (!ctx.cluster.node(id).alive()) {
      out.push_back({"quiescence", id.str() + " still down after drain"});
      continue;
    }
    AcpEngine& e = ctx.cluster.engine(id);
    if (e.active_coordinations() != 0) {
      out.push_back({"quiescence",
                     id.str() + " holds " +
                         std::to_string(e.active_coordinations()) +
                         " active coordinations"});
    }
    if (e.active_participations() != 0) {
      out.push_back({"quiescence",
                     id.str() + " holds " +
                         std::to_string(e.active_participations()) +
                         " active participations"});
    }
  }
}

void check_invariants(CheckContext& ctx, std::vector<CheckFailure>& out) {
  const auto violations = ctx.cluster.check_invariants(ctx.roots);
  if (!violations.empty()) {
    out.push_back({"invariants", std::to_string(violations.size()) +
                                     " violation(s):\n" +
                                     render_violations(violations)});
  }
}

void check_serializability(CheckContext& ctx,
                           std::vector<CheckFailure>& out) {
  HistoryRecorder* h = ctx.cluster.history();
  if (h != nullptr && !h->serializable()) {
    out.push_back(
        {"serializability", "committed history has a conflict cycle"});
  }
}

void check_fencing(CheckContext& ctx, std::vector<CheckFailure>& out) {
  const std::int64_t foreign = ctx.stats.get("storage.reads.unfenced_foreign");
  if (foreign > 0) {
    out.push_back({"fencing",
                   std::to_string(foreign) +
                       " unfenced read(s) of a foreign log partition "
                       "(split-brain hazard)"});
  }
}

/// Snapshot of everything a crash must preserve.
struct StableSnapshot {
  std::vector<Inode> inodes;
  std::vector<std::tuple<ObjectId, std::string, ObjectId>> dentries;

  [[nodiscard]] bool operator==(const StableSnapshot&) const = default;
};

void check_durability(CheckContext& ctx, std::vector<CheckFailure>& out) {
  const std::uint32_t n = ctx.cluster.size();
  std::vector<StableSnapshot> before(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    MetaStore& s = ctx.cluster.store(NodeId(i));
    before[i] = {s.stable_inodes(), s.stable_dentries()};
  }

  // Full power cycle: every node crashes, then recovers from its log.
  for (std::uint32_t i = 0; i < n; ++i) ctx.cluster.crash_node(NodeId(i));
  std::uint32_t recovered = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    ctx.cluster.reboot_node(NodeId(i), [&recovered] { ++recovered; });
  }
  const SimTime deadline = ctx.env.now() + Duration::seconds(120);
  while (recovered < n && ctx.env.now() < deadline) {
    ctx.drive(Duration::millis(100));
  }
  if (recovered < n) {
    out.push_back({"durability",
                   "only " + std::to_string(recovered) + "/" +
                       std::to_string(n) + " nodes recovered from the logs"});
    return;
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    MetaStore& s = ctx.cluster.store(NodeId(i));
    const StableSnapshot after{s.stable_inodes(), s.stable_dentries()};
    if (!(after == before[i])) {
      out.push_back(
          {"durability",
           NodeId(i).str() + " stable state changed across power cycle (" +
               std::to_string(before[i].inodes.size()) + "/" +
               std::to_string(before[i].dentries.size()) + " -> " +
               std::to_string(after.inodes.size()) + "/" +
               std::to_string(after.dentries.size()) + " inodes/dentries)"});
    }
  }
}

}  // namespace

std::vector<CheckFailure> run_checkers(CheckContext& ctx) {
  std::vector<CheckFailure> failures;
  check_quiescence(ctx, failures);
  check_invariants(ctx, failures);
  check_serializability(ctx, failures);
  check_fencing(ctx, failures);
  // Power-cycles the cluster; keep last.
  check_durability(ctx, failures);
  return failures;
}

}  // namespace opc
