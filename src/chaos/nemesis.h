// Declarative fault schedules and the nemesis that injects them.
//
// A FaultSchedule is a small, serializable description of everything that
// will go wrong during one simulated run: crash/reboot cycles, symmetric
// and asymmetric network partitions, probabilistic message loss, delivery
// jitter, log-device slowdowns and heartbeat suppression — plus *trace
// triggers*, faults keyed off history points instead of wall-clock
// instants ("crash the worker right after its first forced WAL flush").
//
// The Nemesis compiles a schedule down to the first-class injection hooks
// the cluster/network/storage layers expose (Cluster::schedule_crash,
// schedule_partition, schedule_disk_degrade, ...), so a schedule is data:
// it can be generated randomly, enumerated systematically, shrunk by
// delta-debugging and written to a repro file — the Jepsen-style workflow
// the chaos explorer (src/chaos/explorer.h) implements at simulation
// speed, with exact seed reproducibility.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace opc {

/// The fault vocabulary.  Values are stable (serialized in repro files).
enum class FaultKind : std::uint8_t {
  kCrash,          // power off `node`; reboot after `duration` (0 = stay down)
  kPartition,      // sever node<->peer for `duration` (asymmetric: node->peer)
  kDiskDegrade,    // multiply node's log-device service time by `magnitude`
  kHeartbeatMute,  // node stays up but stops emitting heartbeats
  kMessageLoss,    // drop each message with probability `magnitude`
  kDelayJitter,    // add uniform extra delay up to `magnitude` microseconds
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// One timed fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  NodeId node;       // primary victim (ignored for loss/jitter)
  NodeId peer;       // partition only: the other end
  Duration at = Duration::zero();        // start, relative to run start
  Duration duration = Duration::zero();  // window; 0 = until the run ends
  double magnitude = 0.0;  // degrade factor | loss probability | jitter µs
  bool asymmetric = false; // partition only: sever node->peer, leave reverse

  [[nodiscard]] bool operator==(const FaultEvent&) const = default;
};

/// A crash keyed off the Nth occurrence of a trace event — the systematic
/// crash-point probe ("right after mds1's second forced log write became
/// durable").  Matching is exact on (kind, actor).
struct TraceTrigger {
  TraceKind on = TraceKind::kLogForceDone;
  std::string actor;            // e.g. "log.mds1" (disk) or "mds0" (engine)
  std::uint32_t occurrence = 1; // fire on the Nth match (1-based)
  NodeId victim;
  Duration delay = Duration::zero();         // extra delay after the match
  Duration reboot_after = Duration::zero();  // 0 = stays down until drain

  [[nodiscard]] bool operator==(const TraceTrigger&) const = default;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;
  std::vector<TraceTrigger> triggers;

  [[nodiscard]] std::size_t size() const {
    return events.size() + triggers.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Latest instant at which a bounded fault window closes (crash reboots,
  /// partition heals...).  The runner keeps the simulation going past this
  /// before it starts draining, so no fault fires into the checked state.
  [[nodiscard]] Duration horizon() const;

  [[nodiscard]] bool operator==(const FaultSchedule&) const = default;
};

/// Serializes the schedule as "fault ..." / "trigger ..." lines (exact
/// round trip, one item per line; see parse_schedule_line).
[[nodiscard]] std::string render_schedule(const FaultSchedule& s);

/// Parses one "fault ..." or "trigger ..." line into `out`.  Returns false
/// (and leaves `out` untouched) on malformed input or any other line.
[[nodiscard]] bool parse_schedule_line(const std::string& line,
                                       FaultSchedule& out);

/// Parses every fault/trigger line of a multi-line text; unknown lines are
/// ignored (the repro file mixes config and schedule lines).
[[nodiscard]] FaultSchedule parse_schedule(const std::string& text);

/// Injects one FaultSchedule into one cluster.  Construct after the
/// cluster, install() before the workload starts, disarm() when the
/// measurement window closes (stops trigger matching), heal() before
/// draining (undoes every standing effect so the cluster can quiesce).
class Nemesis {
 public:
  Nemesis(Simulator& sim, Cluster& cluster, TraceRecorder& trace)
      : sim_(sim), cluster_(cluster), trace_(trace) {}
  ~Nemesis() { disarm(); }

  Nemesis(const Nemesis&) = delete;
  Nemesis& operator=(const Nemesis&) = delete;

  /// Compiles the schedule onto the cluster's injection hooks and arms the
  /// trace triggers.  Call at most once per Nemesis.
  void install(const FaultSchedule& schedule);

  /// Stops trigger matching; already-scheduled timed faults still fire.
  void disarm();

  /// Restores every *standing* effect this nemesis may have left behind:
  /// heals all partitions, resets loss/jitter to the cluster's configured
  /// baseline, restores disk speeds, unmutes heartbeats.  Crashed nodes are
  /// NOT rebooted here — the runner's drain loop owns node lifecycle.
  void heal();

  /// Triggers that actually fired (for reporting).
  [[nodiscard]] std::uint32_t triggers_fired() const { return fired_; }

 private:
  struct Armed {
    TraceTrigger spec;
    std::uint32_t seen = 0;
    bool fired = false;
  };

  void on_trace_event(const TraceEvent& ev);

  Simulator& sim_;
  Cluster& cluster_;
  TraceRecorder& trace_;
  std::vector<Armed> armed_;
  bool observing_ = false;
  bool installed_ = false;
  std::uint32_t fired_ = 0;
};

}  // namespace opc
