// Delta-debugging minimization of failing fault schedules.
//
// A failure found by the explorer usually carries more faults than it
// needs.  The shrinker runs ddmin (Zeller's delta debugging) over the
// schedule's events and triggers: repeatedly re-run the *same* seed and
// config with subsets of the schedule, keeping any subset that still
// fails, until no single item can be removed.  Because every run is
// deterministic, "still fails" is exact, not statistical — the result is
// a 1-minimal repro, rendered as a replayable file for
// `opc chaos --replay`.
#pragma once

#include "chaos/runner.h"

namespace opc {

struct ShrinkResult {
  FaultSchedule minimal;
  ChaosRunResult result;   // the minimal schedule's (failing) outcome
  std::uint32_t runs = 0;  // simulations spent shrinking
  bool input_failed = false;  // false: the input passed, nothing to shrink
};

/// Minimizes `failing` under the fixed `cfg`.  If the input schedule does
/// not actually fail, returns it unchanged with input_failed=false.
[[nodiscard]] ShrinkResult shrink(const ChaosRunConfig& cfg,
                                  const FaultSchedule& failing);

}  // namespace opc
