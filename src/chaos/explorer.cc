#include "chaos/explorer.h"

#include <algorithm>
#include <map>

#include "core/sweep.h"
#include "workload/source.h"

namespace opc {
namespace {

/// Distinct Rng stream for schedule generation (arbitrary, fixed).
constexpr std::uint64_t kScheduleStream = 0xC4A05;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

Duration uniform_duration(Rng& rng, Duration lo, Duration hi) {
  return Duration::nanos(static_cast<std::int64_t>(rng.uniform_u64(
      static_cast<std::uint64_t>(lo.count_nanos()),
      static_cast<std::uint64_t>(hi.count_nanos()))));
}

/// "mds2" / "log.mds2" -> NodeId(2); nullopt when no digits.
std::optional<NodeId> victim_from_actor(const std::string& actor) {
  std::string digits;
  for (char c : actor) {
    if (c >= '0' && c <= '9') digits += c;
  }
  if (digits.empty()) return std::nullopt;
  return NodeId(static_cast<std::uint32_t>(std::stoul(digits)));
}

}  // namespace

const ScheduleOutcome* ExplorationReport::first_failure() const {
  for (const ScheduleOutcome& o : outcomes) {
    if (!o.result.passed) return &o;
  }
  return nullptr;
}

FaultSchedule random_schedule(Rng& rng, const ChaosRunConfig& base,
                              std::uint32_t max_faults) {
  FaultSchedule s;
  const Duration window = base.run_for;
  const auto n_faults = static_cast<std::uint32_t>(
      1 + rng.index(std::max<std::uint32_t>(max_faults, 1)));
  for (std::uint32_t i = 0; i < n_faults; ++i) {
    FaultEvent e;
    // Faults start inside [5%, 80%] of the window: late enough that the
    // workload is in flight, early enough that the window sees the fallout.
    e.at = uniform_duration(rng, window / 20, (window * 4) / 5);
    const auto victim =
        NodeId(static_cast<std::uint32_t>(rng.index(base.n_nodes)));
    switch (rng.index(6)) {
      case 0:
        e.kind = FaultKind::kCrash;
        e.node = victim;
        // 1-in-5 crashes stay down until the drain loop repairs them.
        e.duration = rng.bernoulli(0.2)
                         ? Duration::zero()
                         : uniform_duration(rng, Duration::millis(200),
                                            Duration::millis(1000));
        break;
      case 1: {
        e.kind = FaultKind::kPartition;
        e.node = victim;
        auto peer = NodeId(static_cast<std::uint32_t>(
            rng.index(base.n_nodes - 1)));
        if (peer.value() >= victim.value()) {
          peer = NodeId(peer.value() + 1);
        }
        e.peer = peer;
        e.asymmetric = rng.bernoulli(0.3);
        e.duration = uniform_duration(rng, Duration::millis(200),
                                      Duration::millis(1500));
        break;
      }
      case 2:
        e.kind = FaultKind::kDiskDegrade;
        e.node = victim;
        e.magnitude = rng.uniform(4.0, 64.0);
        e.duration = uniform_duration(rng, Duration::millis(300),
                                      Duration::millis(2000));
        break;
      case 3:
        e.kind = FaultKind::kHeartbeatMute;
        e.node = victim;
        e.duration = uniform_duration(rng, Duration::millis(300),
                                      Duration::millis(1500));
        break;
      case 4:
        e.kind = FaultKind::kMessageLoss;
        e.magnitude = rng.uniform(0.01, 0.15);
        e.duration = uniform_duration(rng, Duration::millis(300),
                                      Duration::millis(2000));
        break;
      default:
        e.kind = FaultKind::kDelayJitter;
        e.magnitude = rng.uniform(50.0, 1000.0);  // µs
        e.duration = uniform_duration(rng, Duration::millis(300),
                                      Duration::millis(2000));
        break;
    }
    s.events.push_back(e);
  }
  // 1-in-4 schedules also get a trace trigger: crash a random node right
  // after one of its early forced-write completions.
  if (rng.bernoulli(0.25)) {
    TraceTrigger t;
    t.on = TraceKind::kLogForceDone;
    const auto victim =
        NodeId(static_cast<std::uint32_t>(rng.index(base.n_nodes)));
    t.actor = "log." + victim.str();
    t.occurrence = static_cast<std::uint32_t>(1 + rng.index(20));
    t.victim = victim;
    t.reboot_after = uniform_duration(rng, Duration::millis(200),
                                      Duration::millis(800));
    s.triggers.push_back(std::move(t));
  }
  return s;
}

std::vector<FaultSchedule> enumerate_crash_points(const ChaosRunConfig& base,
                                                  std::uint32_t limit) {
  // Fault-free probe run: same cluster + workload as run_schedule, traced,
  // stopped at the measurement window (no drain or checking needed).
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(true);
  ClusterConfig cc;
  cc.n_nodes = base.n_nodes;
  cc.protocol = base.protocol;
  cc.seed = base.seed;
  cc.acp.response_timeout = Duration::millis(300);
  cc.acp.retry_interval = Duration::millis(100);
  cc.heartbeat.enabled = true;
  cc.heartbeat.interval = Duration::millis(50);
  cc.heartbeat.suspicion_timeout = Duration::millis(250);
  Cluster cluster(sim, cc, stats, trace);
  IdAllocator ids;
  HashPartitioner part(base.n_nodes);
  NamespacePlanner planner(part, OpCosts{});
  std::vector<ObjectId> dirs;
  for (std::uint32_t i = 0; i < base.n_dirs; ++i) {
    const ObjectId dir = ids.next();
    dirs.push_back(dir);
    cluster.bootstrap_directory(dir, part.home_of(dir));
  }
  ThroughputMeter meter;
  SourceConfig scfg;
  scfg.concurrency = base.concurrency;
  scfg.client_timeout = Duration::seconds(1);
  MixedSource source(cluster.env(), cluster, scfg, meter, stats, planner, ids, dirs,
                     MixedSource::Mix{0.6, 0.25}, base.seed);
  source.start();
  sim.run_until(SimTime::zero() + base.run_for);
  source.stop();

  // Every (kind, actor) pair's first few occurrences is one crash point:
  // "power off that node right as this history point is reached".
  const TraceKind kinds[] = {TraceKind::kLogForceStart,
                             TraceKind::kLogForceDone,
                             TraceKind::kMessageSend};
  constexpr std::uint32_t kPerPairCap = 3;  // first N occurrences each
  std::map<std::pair<TraceKind, std::string>, std::uint32_t> seen;
  std::vector<FaultSchedule> out;
  for (const TraceEvent& ev : trace.events()) {
    if (out.size() >= limit) break;
    if (std::find(std::begin(kinds), std::end(kinds), ev.kind) ==
        std::end(kinds)) {
      continue;
    }
    const auto victim = victim_from_actor(ev.actor);
    if (!victim || victim->value() >= base.n_nodes) continue;
    auto& count = seen[{ev.kind, ev.actor}];
    if (count >= kPerPairCap) continue;
    ++count;
    TraceTrigger t;
    t.on = ev.kind;
    t.actor = ev.actor;
    t.occurrence = count;
    t.victim = *victim;
    t.reboot_after = Duration::millis(400);
    FaultSchedule s;
    s.triggers.push_back(std::move(t));
    out.push_back(std::move(s));
  }
  return out;
}

ExplorationReport explore(const ExplorerConfig& cfg) {
  // Generate every schedule up front (sequential, seed-derived), then fan
  // the runs out across the sweep runner's thread pool; results come back
  // in input order, so the report is deterministic.
  std::vector<ScheduleOutcome> pending;
  Rng rng(cfg.seed, kScheduleStream);
  for (std::uint32_t i = 0; i < cfg.n_schedules; ++i) {
    ScheduleOutcome o;
    o.index = i;
    o.seed = cfg.seed + i;
    o.schedule = random_schedule(rng, cfg.base, cfg.max_faults);
    pending.push_back(std::move(o));
  }
  if (cfg.systematic) {
    ChaosRunConfig probe = cfg.base;
    probe.seed = cfg.seed;
    auto points = enumerate_crash_points(probe, cfg.max_systematic);
    for (auto& s : points) {
      ScheduleOutcome o;
      o.index = static_cast<std::uint32_t>(pending.size());
      o.seed = cfg.seed;  // same workload as the probe that found the point
      o.systematic = true;
      o.schedule = std::move(s);
      pending.push_back(std::move(o));
    }
  }

  ExplorationReport report;
  report.outcomes = ParallelSweep::map<ScheduleOutcome, ScheduleOutcome>(
      pending,
      [&cfg](const ScheduleOutcome& in) {
        ScheduleOutcome out = in;
        ChaosRunConfig rc = cfg.base;
        rc.seed = in.seed;
        out.result = run_schedule(rc, in.schedule);
        return out;
      },
      cfg.threads);

  report.combined_hash = kFnvOffset;
  for (const ScheduleOutcome& o : report.outcomes) {
    if (o.result.passed) {
      ++report.passed;
    } else {
      ++report.failed;
    }
    report.combined_hash = fnv_u64(report.combined_hash, o.result.trace_hash);
  }
  return report;
}

}  // namespace opc
