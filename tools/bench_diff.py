#!/usr/bin/env python3
"""Compare a BENCH_kernel.json run against the committed baseline.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 0.30]
                        [--alloc-threshold 0.50]
    tools/bench_diff.py --self-test

Exit codes:
    0  every bench within the regression budget
    1  at least one bench regressed more than --threshold (fractional)
    2  malformed input / benches missing from either file

Two gated metrics:

  * events_per_sec — fails on a fractional drop beyond --threshold.
  * allocs_per_event — fails on a fractional *increase* beyond
    --alloc-threshold (when the baseline has a meaningful count), and on
    an allocation-free bench (< 0.01 allocs/event) going allocating
    (>= 1), regardless of threshold.  Allocation counts are deterministic
    for these workloads, so the alloc gate can afford to be tighter than
    the wall-clock one.

Metrics present in the current run but absent from the baseline (a newly
added counter, or an older baseline generated before the metric existed)
are reported as "new metric, no baseline" and never fail the gate: a
baseline refresh is the only way to start enforcing a new number.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"error: {path}: unsupported schema {doc.get('schema')!r}")
    if doc.get("smoke"):
        sys.exit(f"error: {path}: refusing to compare a --smoke run")
    return {b["name"]: b for b in doc.get("benches", [])}


def diff(base, cur, threshold, alloc_threshold=0.50, out=sys.stdout):
    """Compares two {name: bench} maps; returns an exit code (0/1/2)."""
    def p(line=""):
        print(line, file=out)

    missing = sorted(set(base) - set(cur))
    if missing:
        p(f"error: benches missing from current run: {missing}")
        return 2

    failed = False
    p(f"{'bench':<34} {'baseline ev/s':>14} {'current ev/s':>14} "
      f"{'delta':>8}  {'allocs/ev':>18}")
    for name, b in sorted(base.items()):
        c = cur[name]
        b_eps = b.get("events_per_sec")
        c_eps = c.get("events_per_sec")
        if b_eps is None:
            # Baseline predates the metric: report, never gate.
            p(f"{name:<34} {'(new metric, no baseline)':>29} "
              f"{c_eps if c_eps is not None else '-':>14}")
            continue
        if c_eps is None:
            p(f"error: {name}: events_per_sec missing from current run")
            return 2
        delta = (c_eps - b_eps) / b_eps if b_eps > 0 else 0.0
        b_allocs = b.get("allocs_per_event")
        c_allocs = c.get("allocs_per_event")
        if b_allocs is None or c_allocs is None:
            allocs = "(new metric, no baseline)"
        else:
            allocs = f"{b_allocs:.3f} -> {c_allocs:.3f}"
        verdict = ""
        if delta < -threshold:
            verdict = "  REGRESSION"
            failed = True
        # Allocation gates (only enforceable when both sides carry the
        # metric).  A bench engineered to be allocation-free must stay that
        # way: going from <0.01 to >=1 alloc/event is a fast-path break even
        # if raw throughput on this runner absorbed it.  A bench with a real
        # baseline count must not grow it beyond --alloc-threshold —
        # allocation counts are deterministic, so noise is no excuse.
        if b_allocs is not None and c_allocs is not None:
            if b_allocs < 0.01 and c_allocs >= 1.0:
                verdict += "  ALLOC-REGRESSION"
                failed = True
            elif (b_allocs >= 0.01
                  and c_allocs > b_allocs * (1.0 + alloc_threshold)):
                verdict += "  ALLOC-REGRESSION"
                failed = True
        p(f"{name:<34} {b_eps:>14.0f} {c_eps:>14.0f} {delta:>+7.1%} "
          f" {allocs:>18}{verdict}")

    extra = sorted(set(cur) - set(base))
    if extra:
        p(f"note: benches not in baseline (ignored): {extra}")
    if failed:
        p(f"\nFAIL: regressed vs baseline (throughput budget {threshold:.0%},"
          f" alloc budget {alloc_threshold:.0%}; refresh the baseline only"
          f" with a justified perf change)")
        return 1
    p("\nOK: within regression budget")
    return 0


def self_test():
    """Exercises the comparison logic on synthetic inputs; exits 0/1."""
    import io

    def run(base, cur, threshold=0.30, alloc_threshold=0.50):
        return diff(base, cur, threshold, alloc_threshold, out=io.StringIO())

    bench = lambda eps, allocs=0.0: {  # noqa: E731 - test-local shorthand
        "events_per_sec": eps, "allocs_per_event": allocs}
    cases = [
        # (description, expected exit code, base, cur)
        ("identical runs pass", 0,
         {"a": bench(100.0)}, {"a": bench(100.0)}),
        ("30% drop fails", 1,
         {"a": bench(100.0)}, {"a": bench(60.0)}),
        ("drop within budget passes", 0,
         {"a": bench(100.0)}, {"a": bench(80.0)}),
        ("alloc regression fails even with throughput flat", 1,
         {"a": bench(100.0, 0.0)}, {"a": bench(100.0, 2.0)}),
        ("missing bench is malformed", 2,
         {"a": bench(100.0), "b": bench(5.0)}, {"a": bench(100.0)}),
        ("extra bench in current is ignored", 0,
         {"a": bench(100.0)}, {"a": bench(100.0), "b": bench(5.0)}),
        ("new metric without baseline never gates", 0,
         {"a": {}}, {"a": bench(1.0)}),
        ("alloc metric missing on one side is reported, not gated", 0,
         {"a": {"events_per_sec": 100.0}}, {"a": bench(100.0, 9.0)}),
        ("current missing a gated metric is malformed", 2,
         {"a": bench(100.0)}, {"a": {}}),
        ("zero baseline throughput cannot divide-by-zero", 0,
         {"a": bench(0.0)}, {"a": bench(0.0)}),
        ("alloc growth beyond budget fails", 1,
         {"a": bench(100.0, 8.0)}, {"a": bench(100.0, 13.0)}),
        ("alloc growth within budget passes", 0,
         {"a": bench(100.0, 8.0)}, {"a": bench(100.0, 11.0)}),
        ("alloc improvement passes", 0,
         {"a": bench(100.0, 28.8)}, {"a": bench(300.0, 8.4)}),
        ("tiny baseline alloc count is not gated by the ratio rule", 0,
         {"a": bench(100.0, 0.001)}, {"a": bench(100.0, 0.5)}),
    ]
    ok = True
    for desc, want, base, cur in cases:
        got = run(base, cur)
        status = "ok" if got == want else f"FAIL (got {got}, want {want})"
        if got != want:
            ok = False
        print(f"  self-test: {desc}: {status}")
    print("self-test " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="max allowed fractional throughput drop (default 0.30)")
    ap.add_argument("--alloc-threshold", type=float, default=0.50,
                    help="max allowed fractional allocs/event increase "
                         "(default 0.50)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in comparison-logic checks and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("baseline and current are required (or use --self-test)")

    rc = diff(load(args.baseline), load(args.current), args.threshold,
              args.alloc_threshold)
    if rc == 2:
        print(f"(current run: {args.current}, baseline: {args.baseline})")
    return rc


if __name__ == "__main__":
    sys.exit(main())
