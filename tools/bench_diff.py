#!/usr/bin/env python3
"""Compare a BENCH_kernel.json run against the committed baseline.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 0.30]

Exit codes:
    0  every bench within the regression budget
    1  at least one bench regressed more than --threshold (fractional)
    2  malformed input / benches missing from either file

The comparison is throughput-based (events_per_sec).  allocs_per_event is
reported for context and checked only for gross regressions (a bench that
was allocation-free going allocating), since it is the number the inline
callback fast path is designed to hold at zero.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"error: {path}: unsupported schema {doc.get('schema')!r}")
    if doc.get("smoke"):
        sys.exit(f"error: {path}: refusing to compare a --smoke run")
    return {b["name"]: b for b in doc.get("benches", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="max allowed fractional throughput drop (default 0.30)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"error: benches missing from {args.current}: {missing}")
        return 2

    failed = False
    print(f"{'bench':<34} {'baseline ev/s':>14} {'current ev/s':>14} "
          f"{'delta':>8}  {'allocs/ev':>18}")
    for name, b in sorted(base.items()):
        c = cur[name]
        b_eps, c_eps = b["events_per_sec"], c["events_per_sec"]
        delta = (c_eps - b_eps) / b_eps if b_eps > 0 else 0.0
        allocs = f"{b['allocs_per_event']:.3f} -> {c['allocs_per_event']:.3f}"
        verdict = ""
        if delta < -args.threshold:
            verdict = "  REGRESSION"
            failed = True
        # A bench engineered to be allocation-free must stay that way: going
        # from <0.01 to >=1 alloc/event is a fast-path break even if raw
        # throughput on this runner absorbed it.
        if b["allocs_per_event"] < 0.01 and c["allocs_per_event"] >= 1.0:
            verdict += "  ALLOC-REGRESSION"
            failed = True
        print(f"{name:<34} {b_eps:>14.0f} {c_eps:>14.0f} {delta:>+7.1%} "
              f" {allocs:>18}{verdict}")

    extra = sorted(set(cur) - set(base))
    if extra:
        print(f"note: benches not in baseline (ignored): {extra}")
    if failed:
        print(f"\nFAIL: throughput regressed more than "
              f"{args.threshold:.0%} vs {args.baseline} "
              f"(refresh the baseline only with a justified perf change)")
        return 1
    print("\nOK: within regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
