#!/usr/bin/env python3
"""Docs drift gate (CI `docs` job).

Three checks, all grep-based and dependency-free:

 1. Every TraceKind enumerator (src/sim/trace.h) and every PhaseId
    enumerator (src/obs/phase.h) must appear in docs/OBSERVABILITY.md.
 2. Every counter name passed as a string literal to StatsRegistry
    add()/set() anywhere under src/ must appear in docs/OBSERVABILITY.md.
    Names built by concatenation ("disk." + name_ + ".writes") become
    wildcard patterns ("disk.*.writes") that must appear verbatim.
 3. Every relative markdown link in the repo's *.md files must point at an
    existing file.

`--self-test` proves the gate actually bites: it re-runs check 2 against a
copy of the docs with one documented counter deleted and fails unless the
checker reports it.  CI runs both modes, so a TraceKind or counter landing
without documentation turns the docs job red.
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OBS_DOC = REPO / "docs" / "OBSERVABILITY.md"

# Counter names look like dotted lowercase paths; this keeps unrelated
# .add()/.set() calls (containers, test fixtures) out of the inventory.
COUNTER_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def fail(errors):
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    print(f"{len(errors)} docs error(s)", file=sys.stderr)
    sys.exit(1)


def extract_enumerators(header, enum_name):
    """Enumerator names of `enum class <enum_name>` in `header`."""
    text = header.read_text()
    m = re.search(
        rf"enum\s+class\s+{enum_name}\b[^{{]*\{{(.*?)\}};", text, re.S)
    if not m:
        fail([f"{header}: enum class {enum_name} not found"])
    names = re.findall(r"^\s*(k[A-Za-z0-9_]+)\s*[,=}]", m.group(1), re.M)
    if not names:
        fail([f"{header}: no enumerators parsed for {enum_name}"])
    return names


def split_call_arg(text, start):
    """Return text of the first argument of a call whose '(' is at start."""
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == '(':
            depth += 1
        elif c == ')':
            depth -= 1
            if depth == 0:
                return text[start + 1:i]
        elif c == ',' and depth == 1:
            return text[start + 1:i]
    return ""


def extract_counters():
    """Counter-name patterns from every .add("...")/.set("...") in src/."""
    patterns = set()
    for path in sorted((REPO / "src").rglob("*.cc")) + sorted(
            (REPO / "src").rglob("*.h")):
        text = path.read_text()
        for m in re.finditer(r"\.(?:add|set)\(", text):
            arg = split_call_arg(text, m.end() - 1)
            literals = re.findall(r'"((?:[^"\\]|\\.)*)"', arg)
            if not literals:
                continue  # fully dynamic name; nothing greppable
            stripped = re.sub(r'"((?:[^"\\]|\\.)*)"', "\x00", arg)
            parts = stripped.split("\x00")
            if "?" in stripped:
                # Ternary: each literal is an alternative full name.
                for lit in literals:
                    if COUNTER_RE.match(lit):
                        patterns.add(lit)
                continue
            # Concatenation: variable segments become '*' wildcards.  A
            # wrapper like std::string("...") is not a concatenation, so a
            # segment only counts when it contains a '+'.
            name = ""
            for i, lit in enumerate(literals):
                if "+" in parts[i]:
                    if not name.endswith("*"):
                        name += "*"
                name += lit
            if "+" in parts[-1]:
                if not name.endswith("*"):
                    name += "*"
            probe = name.replace("*", "x")
            if COUNTER_RE.match(probe):
                patterns.add(name)
    if not patterns:
        fail(["no counter literals found under src/ — extractor broken?"])
    return sorted(patterns)


def check_names_documented(names, doc_text, what):
    return [f"{what} '{n}' is used in src/ but not documented in "
            f"{OBS_DOC.relative_to(REPO)}"
            for n in names if n not in doc_text]


def check_markdown_links():
    errors = []
    md_files = sorted(REPO.glob("*.md")) + sorted(REPO.glob("docs/*.md"))
    link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    for md in md_files:
        text = md.read_text()
        # Strip fenced code blocks: ``` samples often contain [x](y) noise.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for target in link_re.findall(text):
            if re.match(r"[a-z]+://", target) or target.startswith("#"):
                continue
            rel = target.split("#")[0]
            if not rel:
                continue
            if not (md.parent / rel).exists() and not (REPO / rel).exists():
                errors.append(
                    f"{md.relative_to(REPO)}: broken link -> {target}")
    return errors


def run_checks(doc_text):
    errors = []
    trace_kinds = extract_enumerators(REPO / "src/sim/trace.h", "TraceKind")
    phase_ids = extract_enumerators(REPO / "src/obs/phase.h", "PhaseId")
    errors += check_names_documented(trace_kinds, doc_text, "TraceKind")
    errors += check_names_documented(phase_ids, doc_text, "PhaseId")
    errors += check_names_documented(extract_counters(), doc_text, "counter")
    return errors


def self_test():
    """The gate must fail when a documented counter disappears from docs."""
    doc_text = OBS_DOC.read_text()
    if run_checks(doc_text):
        fail(["self-test needs a clean baseline; fix the docs first"])
    victim = extract_counters()[0]
    mutated = doc_text.replace(victim, "REDACTED")
    missing = run_checks(mutated)
    if not any(victim in e for e in missing):
        fail([f"self-test: deleting '{victim}' from the docs was NOT "
              "detected — the checker is toothless"])
    print(f"self-test ok: removing '{victim}' from docs is detected "
          f"({len(missing)} error(s) reported)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--self-test", action="store_true",
                    help="prove the checker fails on an undocumented name")
    args = ap.parse_args()

    if not OBS_DOC.exists():
        fail([f"{OBS_DOC.relative_to(REPO)} is missing"])
    if args.self_test:
        self_test()
        return

    errors = run_checks(OBS_DOC.read_text())
    errors += check_markdown_links()
    if errors:
        fail(errors)
    print("docs ok: trace kinds, phase ids, counters and markdown links")


if __name__ == "__main__":
    main()
