// opc — command-line driver for the simulation library and the serving path.
//
// Runs any experiment the benches run, but parameterized from the command
// line and with optional CSV output, so new studies don't need a recompile:
//
//   opc storm  --proto 1pc --concurrency 100 --seconds 30
//   opc storm  --proto all --net-latency-us 5000 --csv
//   opc mixed  --nodes 8 --dirs 16 --ops 5000 --renames 0.1
//   opc sweep  --param disk-bw --values 102400,409600,1638400 --csv
//   opc serve  --protocol 1pc --nodes 3 --uds /tmp/opc.sock
//   opc loadgen --uds /tmp/opc.sock --rate 20000 --duration 10s
//   opc timeline --proto prc
//   opc table1
//
// Run `opc help` for the full reference.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "chaos/explorer.h"
#include "chaos/shrinker.h"
#include "cli_flags.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "core/timeline.h"
#include "obs/assembler.h"
#include "obs/export_binary.h"
#include "obs/export_chrome.h"
#include "obs/report.h"
#include "report/bench_report.h"
#include "rpc/loadgen.h"
#include "rpc/server.h"
#include "rt/rt_cluster.h"
#include "stats/table.h"

namespace {

using namespace opc;
using cli::Args;
using cli::CommonFlags;
using cli::parse_common;
using cli::parse_protocols;

ExperimentConfig config_from_args(const Args& a, const CommonFlags& cf,
                                  ProtocolKind proto) {
  ExperimentConfig cfg = paper_fig6_config(proto);
  cfg.cluster.n_nodes = static_cast<std::uint32_t>(a.num("nodes", 2));
  cfg.participants = cf.participants;
  // Wide txns need one distinct worker node per participant; raise the
  // cluster rather than failing so `--participants 3` works bare.
  if (cfg.cluster.n_nodes < cf.participants) {
    cfg.cluster.n_nodes = cf.participants;
  }
  cfg.cluster.net.latency = Duration::micros(a.num("net-latency-us", 100));
  cfg.cluster.disk.bytes_per_second = a.real("disk-bw", 400.0 * 1024.0);
  cfg.cluster.wal.force_pad_to =
      static_cast<std::uint64_t>(a.num("block", 8192));
  cfg.cluster.wal.group_commit = a.flag("group-commit");
  cfg.cluster.seed = cf.seed;
  cfg.source.concurrency =
      static_cast<std::uint32_t>(a.num("concurrency", 100));
  cfg.run_for = cf.duration;
  const auto run_secs =
      static_cast<std::int64_t>(cf.duration.to_seconds_f());
  cfg.warmup = Duration::seconds(
      std::max<std::int64_t>(1, a.num("warmup", run_secs / 6)));
  cfg.n_directories = static_cast<std::uint32_t>(a.num("dirs", 1));
  if (a.num("crash-period-ms", 0) > 0) {
    cfg.crash_period = Duration::millis(a.num("crash-period-ms", 0));
    cfg.cluster.acp.response_timeout = Duration::millis(300);
    cfg.cluster.acp.retry_interval = Duration::millis(100);
    cfg.cluster.heartbeat.enabled = true;
    cfg.source.client_timeout = Duration::seconds(15);
  }
  return cfg;
}

void print_results(const std::vector<ProtocolKind>& protos,
                   const std::vector<ExperimentResult>& results, bool csv) {
  TextTable table({"protocol", "ops_per_second", "committed", "aborted",
                   "lost", "p50_latency_ms", "p99_latency_ms",
                   "coordinator_disk_busy", "invariant_violations"});
  for (std::size_t i = 0; i < protos.size(); ++i) {
    const auto& r = results[i];
    table.add_row({std::string(protocol_name(protos[i])),
                   TextTable::num(r.ops_per_second, 3),
                   std::to_string(r.committed), std::to_string(r.aborted),
                   std::to_string(r.lost),
                   TextTable::num(r.latency.quantile_duration(0.5).to_millis_f(), 2),
                   TextTable::num(r.latency.quantile_duration(0.99).to_millis_f(), 2),
                   TextTable::num(r.coordinator_disk_busy, 3),
                   std::to_string(r.invariant_violations)});
  }
  std::fputs(csv ? table.render_csv().c_str() : table.render().c_str(),
             stdout);
}

int run_storm_cmd(const Args& a, bool batch_mode) {
  CommonFlags cf;
  if (!parse_common(a, "all", 30, cf)) return 2;
  const auto batch = static_cast<std::uint32_t>(a.num("batch", 1));
  const auto results = ParallelSweep::map<ProtocolKind, ExperimentResult>(
      cf.protocols, [&](const ProtocolKind& p) {
        ExperimentConfig cfg = config_from_args(a, cf, p);
        if (a.flag("trace-hash")) cfg.trace = true;
        return batch_mode ? run_batched_storm(cfg, batch)
                          : run_create_storm(cfg);
      });
  print_results(cf.protocols, results, cf.csv);
  if (a.flag("trace-hash")) {
    // The run's full-history FNV hash: equal seeds must print equal hashes
    // (the determinism contract tests/core asserts).
    for (std::size_t i = 0; i < cf.protocols.size(); ++i) {
      std::printf("trace_hash %s 0x%016llx\n",
                  std::string(protocol_name(cf.protocols[i])).c_str(),
                  static_cast<unsigned long long>(results[i].trace_hash));
    }
  }
  for (const auto& r : results) {
    if (r.invariant_violations != 0) return 1;
  }
  return 0;
}

int cmd_storm(const Args& a) { return run_storm_cmd(a, /*batch_mode=*/false); }
int cmd_batch(const Args& a) { return run_storm_cmd(a, /*batch_mode=*/true); }

int cmd_mixed(const Args& a) {
  CommonFlags cf;
  if (!parse_common(a, "1pc", 30, cf)) return 2;
  MixedSource::Mix mix;
  mix.create = a.real("creates", 0.6);
  mix.remove = a.real("deletes", 0.25);
  const auto dirs = static_cast<std::uint32_t>(a.num("dirs", 8));
  const auto results = ParallelSweep::map<ProtocolKind, ExperimentResult>(
      cf.protocols, [&](const ProtocolKind& p) {
        ExperimentConfig cfg = config_from_args(a, cf, p);
        if (cfg.cluster.n_nodes < 3) cfg.cluster.n_nodes = 4;
        cfg.cluster.record_history = true;
        cfg.source.concurrency =
            static_cast<std::uint32_t>(a.num("concurrency", 8));
        cfg.source.max_ops = static_cast<std::uint64_t>(a.num("ops", 2000));
        return run_mixed(cfg, mix, dirs);
      });
  print_results(cf.protocols, results, cf.csv);
  return 0;
}

int cmd_sweep(const Args& a) {
  const std::string param = a.str("param", "");
  const std::string values = a.str("values", "");
  if (param.empty() || values.empty()) {
    std::fprintf(stderr,
                 "usage: opc sweep --param "
                 "(net-latency-us|disk-bw|concurrency|dirs) --values "
                 "v1,v2,... [--proto all] [--csv]\n");
    return 2;
  }
  std::vector<double> vals;
  std::size_t pos = 0;
  while (pos < values.size()) {
    const std::size_t comma = values.find(',', pos);
    vals.push_back(std::atof(values.substr(pos, comma - pos).c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  CommonFlags cf;
  if (!parse_common(a, "all", 30, cf)) return 2;

  struct Cell {
    double value;
    ProtocolKind proto;
  };
  std::vector<Cell> cells;
  for (double v : vals) {
    for (ProtocolKind p : cf.protocols) cells.push_back({v, p});
  }
  const auto results = ParallelSweep::map<Cell, ExperimentResult>(
      cells, [&](const Cell& c) {
        ExperimentConfig cfg = config_from_args(a, cf, c.proto);
        if (param == "net-latency-us") {
          cfg.cluster.net.latency =
              Duration::micros(static_cast<std::int64_t>(c.value));
        } else if (param == "disk-bw") {
          cfg.cluster.disk.bytes_per_second = c.value;
        } else if (param == "concurrency") {
          cfg.source.concurrency = static_cast<std::uint32_t>(c.value);
        } else if (param == "dirs") {
          cfg.n_directories = static_cast<std::uint32_t>(c.value);
        }
        return run_create_storm(cfg);
      });

  TextTable table({param, "protocol", "ops_per_second",
                   "invariant_violations"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    table.add_row({TextTable::num(cells[i].value, 0),
                   std::string(protocol_name(cells[i].proto)),
                   TextTable::num(results[i].ops_per_second, 3),
                   std::to_string(results[i].invariant_violations)});
  }
  std::fputs(cf.csv ? table.render_csv().c_str() : table.render().c_str(),
             stdout);
  return 0;
}

// ---------------------------------------------------------------------------
// opc chaos — fault-schedule exploration, replay and shrinking.
// ---------------------------------------------------------------------------

std::string describe_schedule(const FaultSchedule& s) {
  std::string text = render_schedule(s);
  if (text.empty()) text = "(no faults)\n";
  return text;
}

int chaos_replay(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open repro file '%s'\n", path.c_str());
    return 2;
  }
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    text.append(buf, n);
  }
  std::fclose(f);

  ChaosRunConfig cfg;
  FaultSchedule schedule;
  if (!parse_repro(text, cfg, schedule)) {
    std::fprintf(stderr, "malformed repro file '%s'\n", path.c_str());
    return 2;
  }
  std::printf("replaying %s: proto=%s nodes=%u seed=%llu, %zu fault(s), "
              "%zu trigger(s)\n",
              path.c_str(), std::string(protocol_name(cfg.protocol)).c_str(),
              cfg.n_nodes, static_cast<unsigned long long>(cfg.seed),
              schedule.events.size(), schedule.triggers.size());
  const ChaosRunResult r = run_schedule(cfg, schedule);
  std::printf("trace_hash 0x%016llx  committed %llu  aborted %llu\n",
              static_cast<unsigned long long>(r.trace_hash),
              static_cast<unsigned long long>(r.committed),
              static_cast<unsigned long long>(r.aborted));
  if (r.passed) {
    std::printf("all checkers green — failure did NOT reproduce\n");
    return 0;
  }
  std::printf("failure reproduced:\n%s",
              render_failures(r.failures).c_str());
  return 1;
}

int cmd_chaos(const Args& a) {
  const std::string replay = a.str("replay", "");
  if (!replay.empty()) return chaos_replay(replay);

  std::vector<ProtocolKind> protos;
  // Accept both --protocol and --proto; a single protocol per exploration.
  if (!parse_protocols(a.str("protocol", a.str("proto", "1pc")), protos) ||
      protos.size() != 1) {
    std::fprintf(stderr, "chaos needs one --protocol (prn|prc|ep|1pc|pra)\n");
    return 2;
  }

  ExplorerConfig cfg;
  cfg.base.protocol = protos[0];
  cfg.base.n_nodes = static_cast<std::uint32_t>(a.num("nodes", 3));
  if (!cli::parse_participants(a, cfg.base.participants)) return 2;
  // Each participant occupies a distinct MDS; raise the cluster rather
  // than failing so `--participants 5` works without --nodes.
  if (cfg.base.n_nodes < cfg.base.participants) {
    cfg.base.n_nodes = cfg.base.participants;
  }
  cfg.base.concurrency = static_cast<std::uint32_t>(a.num("concurrency", 6));
  cfg.base.n_dirs = static_cast<std::uint32_t>(a.num("dirs", 4));
  cfg.base.run_for = Duration::seconds(a.num("seconds", 8));
  cfg.base.unsafe_skip_fencing = a.flag("bug");
  cfg.n_schedules = static_cast<std::uint32_t>(a.num("schedules", 100));
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 42));
  cfg.max_faults = static_cast<std::uint32_t>(a.num("max-faults", 4));
  cfg.systematic = a.flag("systematic");
  cfg.max_systematic = static_cast<std::uint32_t>(a.num("max-systematic", 64));
  cfg.threads = static_cast<unsigned>(a.num("threads", 0));

  std::printf("exploring %u random schedule(s)%s, proto %s, master seed "
              "%llu%s\n",
              cfg.n_schedules,
              cfg.systematic ? " + systematic crash points" : "",
              std::string(protocol_name(cfg.base.protocol)).c_str(),
              static_cast<unsigned long long>(cfg.seed),
              cfg.base.unsafe_skip_fencing
                  ? " [BUG INJECTED: fencing skipped]"
                  : "");
  const ExplorationReport report = explore(cfg);
  std::printf("schedules %zu  passed %u  failed %u  combined_hash 0x%016llx\n",
              report.outcomes.size(), report.passed, report.failed,
              static_cast<unsigned long long>(report.combined_hash));
  if (report.failed == 0) {
    std::printf("all checkers green\n");
    return 0;
  }

  const ScheduleOutcome* fail = report.first_failure();
  std::printf("\nfirst failure: schedule #%u (seed %llu%s)\n%s%s",
              fail->index, static_cast<unsigned long long>(fail->seed),
              fail->systematic ? ", systematic" : "",
              describe_schedule(fail->schedule).c_str(),
              render_failures(fail->result.failures).c_str());

  ChaosRunConfig rcfg = cfg.base;
  rcfg.seed = fail->seed;
  std::printf("\nshrinking...\n");
  const ShrinkResult shrunk = shrink(rcfg, fail->schedule);
  std::printf("minimal repro after %u run(s): %zu of %zu item(s)\n%s%s",
              shrunk.runs, shrunk.minimal.size(), fail->schedule.size(),
              describe_schedule(shrunk.minimal).c_str(),
              render_failures(shrunk.result.failures).c_str());

  const std::string out_path = a.str("out", "chaos.repro");
  const std::string repro = render_repro(rcfg, shrunk.minimal);
  if (FILE* f = std::fopen(out_path.c_str(), "wb"); f != nullptr) {
    std::fwrite(repro.data(), 1, repro.size(), f);
    std::fclose(f);
    std::printf("\nrepro written to %s — replay with: opc chaos --replay "
                "%s\n",
                out_path.c_str(), out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write repro file '%s'\n", out_path.c_str());
  }
  return 1;
}

// ---------------------------------------------------------------------------
// opc trace — span assembly, exporters, run reports (docs/OBSERVABILITY.md).
// ---------------------------------------------------------------------------

bool read_file(const std::string& path, std::string& out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return false;
  }
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    out.append(buf, n);
  }
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::string& data) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return true;
}

struct TracedStorm {
  ProtocolKind proto = ProtocolKind::kOnePC;
  ExperimentResult result;
  obs::SpanSet spans;
  obs::RunReport report;
};

/// One traced seeded create storm: run, assemble spans, build the report.
/// Takes the same cluster/workload flags as `opc storm`, but defaults to a
/// short window — tracing keeps every event in memory.
bool run_traced_storm(const Args& a, TracedStorm& out) {
  CommonFlags cf;
  if (!parse_common(a, "1pc", 2, cf) || cf.protocols.size() != 1) {
    std::fprintf(stderr, "trace needs one --proto (prn|prc|ep|1pc|pra)\n");
    return false;
  }
  out.proto = cf.protocols[0];
  ExperimentConfig cfg = config_from_args(a, cf, out.proto);
  cfg.trace = true;
  out.result = run_create_storm(cfg);
  out.spans = obs::assemble_spans(out.result.trace_events, &out.result.phases);

  obs::ReportInputs in;
  in.meta.protocol = std::string(protocol_name(out.proto));
  in.meta.workload = "create_storm";
  in.meta.seed = cfg.cluster.seed;
  in.meta.nodes = static_cast<int>(cfg.cluster.n_nodes);
  in.meta.sim_duration_ns = (cfg.warmup + cfg.run_for).count_nanos();
  in.spans = &out.spans;
  in.stats = &out.result.stats;
  in.latency = &out.result.latency;
  in.committed = static_cast<std::int64_t>(out.result.committed);
  in.aborted = static_cast<std::int64_t>(out.result.aborted);
  in.lost = static_cast<std::int64_t>(out.result.lost);
  in.ops_per_second = out.result.ops_per_second;
  in.trace_hash = out.result.trace_hash;
  out.report = obs::build_report(in);
  return true;
}

int trace_diff(const std::string& path_a, const std::string& path_b) {
  std::string text_a, text_b;
  if (!read_file(path_a, text_a) || !read_file(path_b, text_b)) return 2;
  obs::RunReport ra, rb;
  if (!obs::report_from_json(text_a, ra)) {
    std::fprintf(stderr, "malformed report '%s'\n", path_a.c_str());
    return 2;
  }
  if (!obs::report_from_json(text_b, rb)) {
    std::fprintf(stderr, "malformed report '%s'\n", path_b.c_str());
    return 2;
  }
  std::fputs(obs::render_report_diff(ra, rb).c_str(), stdout);
  return 0;
}

int cmd_trace(const Args& a) {
  const std::vector<std::string>& pos = a.positionals();
  const std::string action = pos.empty() ? "" : pos[0];

  if (action == "diff") {
    if (pos.size() != 3) {
      std::fprintf(stderr, "usage: opc trace diff A.json B.json\n");
      return 2;
    }
    return trace_diff(pos[1], pos[2]);
  }

  const std::string exp = a.str("export", "");
  if (!exp.empty()) {
    if (exp != "chrome" && exp != "spans") {
      std::fprintf(stderr, "unknown --export format (chrome|spans)\n");
      return 2;
    }
    // With --export, the positional (if any) is the output path.
    const std::string out_path =
        !pos.empty() ? pos[0] : (exp == "chrome" ? "trace.json" : "spans.bin");
    TracedStorm run;
    if (!run_traced_storm(a, run)) return 2;
    const std::string data = exp == "chrome"
                                 ? obs::export_chrome_trace(run.spans)
                                 : obs::encode_span_log(run.spans);
    if (!write_file(out_path, data)) return 2;
    std::printf("wrote %s (%zu spans, %zu bytes)\n", out_path.c_str(),
                run.spans.size(), data.size());
    return 0;
  }

  if (!action.empty() && action != "report" && action != "top" &&
      action != "phases") {
    std::fprintf(stderr,
                 "usage: opc trace [report|top|phases|diff A.json B.json] "
                 "[--export chrome|spans OUT] [--proto P] [--seconds N] "
                 "[--json FILE] [--n N]\n");
    return 2;
  }

  TracedStorm run;
  if (!run_traced_storm(a, run)) return 2;

  if (action == "top") {
    const auto n = static_cast<std::size_t>(a.num("n", 10));
    TextTable table({"txn", "op", "begin_ms", "duration_ms",
                     "slowest phases"});
    std::size_t shown = 0;
    for (const obs::SlowTxnRow& row : run.report.slowest) {
      if (shown++ >= n) break;
      std::string phases;
      std::size_t count = 0;
      for (const auto& [name, ns] : row.phases) {
        if (count++ >= 3) break;
        if (!phases.empty()) phases += ", ";
        phases += name + "=" + TextTable::num(
                                   static_cast<double>(ns) / 1e6, 3) + "ms";
      }
      table.add_row({std::to_string(row.txn), row.name,
                     TextTable::num(static_cast<double>(row.begin_ns) / 1e6,
                                    3),
                     TextTable::num(
                         static_cast<double>(row.duration_ns) / 1e6, 3),
                     phases});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
  }

  if (action == "phases") {
    TextTable table({"phase", "count", "total_ns", "mean_ns", "max_ns"});
    for (const obs::PhaseBreakdownRow& row : run.report.phases) {
      table.add_row({row.name, std::to_string(row.count),
                     std::to_string(row.total_ns),
                     std::to_string(row.mean_ns),
                     std::to_string(row.max_ns)});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
  }

  // Default action: full report text, optional REPORT.json.
  std::fputs(obs::render_report_text(run.report).c_str(), stdout);
  const std::string json_path = a.str("json", "");
  if (!json_path.empty()) {
    if (!write_file(json_path, obs::report_to_json(run.report))) return 2;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// opc rtstorm — live multi-threaded storm on the real-time backend.
// ---------------------------------------------------------------------------

int cmd_rtstorm(const Args& a) {
  CommonFlags cf;
  if (!parse_common(a, "1pc", 0, cf)) return 2;
  const bool smoke = a.flag("smoke");

  RtClusterConfig base;
  base.n_nodes = static_cast<std::uint32_t>(a.num("nodes", 2));
  if (base.n_nodes < cf.participants) base.n_nodes = cf.participants;
  base.seed = cf.seed;
  base.net.latency = Duration::micros(a.num("net-latency-us", 100));
  // Real seconds, not simulated ones: default to a device fast enough that
  // a live run finishes promptly; --disk-bw restores the paper's 400 KB/s.
  base.disk.bytes_per_second = a.real("disk-bw", 4.0 * 1024.0 * 1024.0);
  base.wal.force_pad_to = static_cast<std::uint64_t>(a.num("block", 8192));
  base.wal.group_commit = a.flag("group-commit");

  const auto ops = static_cast<std::uint32_t>(
      a.num("ops", smoke ? 50 : 2000));  // per node
  const auto concurrency =
      static_cast<std::uint32_t>(a.num("concurrency", smoke ? 8 : 32));
  const Duration max_wall = cf.duration;
  if (!cf.report.empty() && cf.protocols.size() != 1) {
    std::fprintf(stderr, "--report needs a single --protocol\n");
    return 2;
  }

  int rc = 0;
  TextTable table({"protocol", "ops_per_second", "committed", "aborted",
                   "p50_latency_ms", "p99_latency_ms", "wall_seconds",
                   "invariant_violations"});
  for (ProtocolKind p : cf.protocols) {
    RtClusterConfig cfg = base;
    cfg.protocol = p;
    const StormPlan plan = make_storm_plan(cfg.n_nodes, ops, cf.participants);
    RtCluster cluster(cfg);
    const RtCluster::StormResult res =
        cluster.run_storm(plan, concurrency, max_wall);
    const auto violations = cluster.check_invariants(plan.dirs);
    if (!violations.empty()) rc = 1;

    table.add_row(
        {std::string(protocol_name(p)), TextTable::num(res.ops_per_second, 3),
         std::to_string(res.committed), std::to_string(res.aborted),
         TextTable::num(res.latency.quantile_duration(0.5).to_millis_f(), 2),
         TextTable::num(res.latency.quantile_duration(0.99).to_millis_f(), 2),
         TextTable::num(res.wall_seconds, 3),
         std::to_string(violations.size())});

    if (!cf.report.empty()) {
      obs::ReportInputs in;
      in.meta.protocol = std::string(protocol_name(p));
      in.meta.workload = "rtstorm";
      in.meta.seed = cfg.seed;
      in.meta.nodes = static_cast<int>(cfg.n_nodes);
      in.meta.sim_duration_ns =
          static_cast<std::int64_t>(res.wall_seconds * 1e9);
      in.stats = &res.stats;
      in.latency = &res.latency;
      in.committed = static_cast<std::int64_t>(res.committed);
      in.aborted = static_cast<std::int64_t>(res.aborted);
      in.ops_per_second = res.ops_per_second;
      if (!write_file(cf.report,
                      obs::report_to_json(obs::build_report(in)))) {
        return 2;
      }
    }
  }
  std::fputs(cf.csv ? table.render_csv().c_str() : table.render().c_str(),
             stdout);
  return rc;
}

// ---------------------------------------------------------------------------
// opc serve / opc loadgen — the real serving path (docs/SERVING.md).
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_serve_stop = 0;
void serve_signal(int) { g_serve_stop = 1; }

constexpr const char* kDefaultSock = "/tmp/opc-serve.sock";

int cmd_serve(const Args& a) {
  CommonFlags cf;
  if (!parse_common(a, "1pc", 0, cf) || cf.protocols.size() != 1) {
    std::fprintf(stderr, "serve needs one --protocol (prn|prc|ep|1pc|pra)\n");
    return 2;
  }

  RtClusterConfig cfg;
  cfg.protocol = cf.protocols[0];
  cfg.n_nodes = static_cast<std::uint32_t>(a.num("nodes", 3));
  cfg.seed = cf.seed;
  cfg.net.latency = Duration::micros(a.num("net-latency-us", 0));
  // Serving default: a device that sustains tens of thousands of 8 KiB
  // commit forces per second (NVMe-class), so the socket path — not the
  // modeled disk — is what a loadgen measures.  --disk-bw dials it down.
  cfg.disk.bytes_per_second = a.real("disk-bw", 2.0 * 1024 * 1024 * 1024);
  cfg.wal.force_pad_to = static_cast<std::uint64_t>(a.num("block", 8192));
  cfg.wal.group_commit = a.flag("group-commit");

  RtCluster cluster(cfg);
  // Bootstrap the hot directories the StridedPartitioner serves: ids
  // 1..n_nodes, homed on nodes 0..n-1 (same namespace as rtstorm plans).
  for (std::uint32_t i = 0; i < cfg.n_nodes; ++i) {
    cluster.bootstrap_directory(ObjectId(i + 1), NodeId(i));
  }

  rpc::RpcServerConfig scfg;
  scfg.uds_path = a.str("uds", "");
  scfg.tcp = a.flag("tcp") || a.has("port");
  scfg.tcp_port = static_cast<std::uint16_t>(a.num("port", 0));
  if (scfg.uds_path.empty() && !scfg.tcp) scfg.uds_path = kDefaultSock;
  scfg.event_threads = static_cast<std::uint32_t>(a.num("event-threads", 1));
  scfg.max_inflight = static_cast<std::uint32_t>(a.num("max-inflight", 1024));
  if (a.num("timeout-ms", 0) > 0) {
    scfg.request_timeout = Duration::millis(a.num("timeout-ms", 0));
  }

  rpc::RpcServer server(cluster, scfg);
  if (!server.start()) return 2;
  std::printf("serving %s on %s%s (nodes=%u, max-inflight=%u)\n",
              std::string(protocol_name(cfg.protocol)).c_str(),
              scfg.uds_path.empty() ? "tcp 127.0.0.1:" : scfg.uds_path.c_str(),
              scfg.uds_path.empty()
                  ? std::to_string(server.tcp_port()).c_str()
                  : "",
              cfg.n_nodes, scfg.max_inflight);
  std::fflush(stdout);

  std::signal(SIGINT, serve_signal);
  std::signal(SIGTERM, serve_signal);
  const auto start = std::chrono::steady_clock::now();
  const bool bounded = cf.duration > Duration::zero();
  while (g_serve_stop == 0) {
    if (bounded && std::chrono::steady_clock::now() - start >=
                       std::chrono::nanoseconds(cf.duration.count_nanos())) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("draining...\n");
  std::fflush(stdout);
  server.stop();
  cluster.env().wait_idle();

  // Quiescent now: fold per-node engine results and server counters.
  Histogram latency;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  for (std::uint32_t i = 0; i < cfg.n_nodes; ++i) {
    AcpEngine& e = cluster.node(NodeId(i)).engine();
    latency.merge(e.client_latency());
    committed += e.committed_count();
    aborted += e.aborted_count();
  }
  StatsRegistry stats;
  server.export_stats(stats);

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  TextTable table({"protocol", "committed", "aborted", "busy_shed",
                   "p50_latency_ms", "p99_latency_ms", "wall_seconds"});
  table.add_row(
      {std::string(protocol_name(cfg.protocol)), std::to_string(committed),
       std::to_string(aborted), std::to_string(server.busy_count()),
       TextTable::num(latency.quantile_duration(0.5).to_millis_f(), 2),
       TextTable::num(latency.quantile_duration(0.99).to_millis_f(), 2),
       TextTable::num(wall, 3)});
  std::fputs(cf.csv ? table.render_csv().c_str() : table.render().c_str(),
             stdout);

  if (!cf.report.empty()) {
    obs::ReportInputs in;
    in.meta.protocol = std::string(protocol_name(cfg.protocol));
    in.meta.workload = "serve";
    in.meta.seed = cfg.seed;
    in.meta.nodes = static_cast<int>(cfg.n_nodes);
    in.meta.sim_duration_ns = static_cast<std::int64_t>(wall * 1e9);
    in.stats = &stats;
    in.latency = &latency;
    in.committed = static_cast<std::int64_t>(committed);
    in.aborted = static_cast<std::int64_t>(aborted);
    in.ops_per_second = wall > 0 ? (committed + aborted) / wall : 0.0;
    if (!write_file(cf.report, obs::report_to_json(obs::build_report(in)))) {
      return 2;
    }
  }
  return 0;
}

int cmd_loadgen(const Args& a) {
  CommonFlags cf;
  if (!parse_common(a, "1pc", 10, cf) || cf.protocols.size() != 1) {
    std::fprintf(stderr,
                 "loadgen labels its report with one --protocol "
                 "(prn|prc|ep|1pc|pra)\n");
    return 2;
  }

  rpc::LoadgenConfig lc;
  lc.uds_path = a.str("uds", "");
  lc.tcp_port = static_cast<std::uint16_t>(a.num("port", 0));
  if (lc.uds_path.empty() && lc.tcp_port == 0) lc.uds_path = kDefaultSock;
  lc.threads = static_cast<std::uint32_t>(a.num("threads", 4));
  lc.rate = a.real("rate", 10000.0);
  lc.duration = cf.duration;
  lc.seed = cf.seed;
  lc.n_dirs = static_cast<std::uint32_t>(a.num("dirs", 3));
  lc.zipf_s = a.real("zipf", 0.0);
  lc.participants = cf.participants;
  lc.create_weight = a.real("creates", 0.8);
  lc.mkdir_weight = a.real("mkdirs", 0.1);
  lc.rename_weight = a.real("renames", 0.1);

  const rpc::LoadgenResult res = rpc::run_loadgen(lc);
  if (res.transport_errors > 0) {
    std::fprintf(stderr, "loadgen transport error: %s\n", res.error.c_str());
  }

  TextTable table({"offered_rate", "achieved_rate", "sent", "ok", "aborted",
                   "busy", "errors", "lost", "p50_ms", "p95_ms", "p99_ms",
                   "p999_ms"});
  const auto ms = [&res](double q) {
    return TextTable::num(res.latency.quantile_duration(q).to_millis_f(), 3);
  };
  table.add_row({TextTable::num(res.offered_rate, 0),
                 TextTable::num(res.achieved_rate, 0),
                 std::to_string(res.sent), std::to_string(res.ok),
                 std::to_string(res.aborted), std::to_string(res.busy),
                 std::to_string(res.not_found + res.bad_request +
                                res.timeouts + res.shutdown +
                                res.transport_errors),
                 std::to_string(res.lost), ms(0.5), ms(0.95), ms(0.99),
                 ms(0.999)});
  std::fputs(cf.csv ? table.render_csv().c_str() : table.render().c_str(),
             stdout);

  if (!cf.report.empty()) {
    StatsRegistry stats;
    stats.set("loadgen.sent", static_cast<std::int64_t>(res.sent));
    stats.set("loadgen.ok", static_cast<std::int64_t>(res.ok));
    stats.set("loadgen.aborted", static_cast<std::int64_t>(res.aborted));
    stats.set("loadgen.busy", static_cast<std::int64_t>(res.busy));
    stats.set("loadgen.not_found", static_cast<std::int64_t>(res.not_found));
    stats.set("loadgen.bad_request",
              static_cast<std::int64_t>(res.bad_request));
    stats.set("loadgen.timeouts", static_cast<std::int64_t>(res.timeouts));
    stats.set("loadgen.shutdown", static_cast<std::int64_t>(res.shutdown));
    stats.set("loadgen.skipped", static_cast<std::int64_t>(res.skipped));
    stats.set("loadgen.transport_errors",
              static_cast<std::int64_t>(res.transport_errors));
    obs::ReportInputs in;
    in.meta.protocol = std::string(protocol_name(cf.protocols[0]));
    in.meta.workload = "loadgen";
    in.meta.seed = cf.seed;
    in.meta.nodes = static_cast<int>(a.num("nodes", 0));
    in.meta.sim_duration_ns =
        static_cast<std::int64_t>(res.wall_seconds * 1e9);
    in.stats = &stats;
    in.latency = &res.latency;
    in.committed = static_cast<std::int64_t>(res.ok);
    in.aborted = static_cast<std::int64_t>(res.aborted);
    in.lost = static_cast<std::int64_t>(res.lost);
    in.ops_per_second = res.achieved_rate;
    if (!write_file(cf.report, obs::report_to_json(obs::build_report(in)))) {
      return 2;
    }
  }

  if (res.transport_errors > 0) return 2;
  if (res.hard_failures() > 0) return 1;
  const double p99_bound_ms = a.real("max-p99-ms", 0.0);
  if (p99_bound_ms > 0 &&
      res.latency.quantile_duration(0.99).to_millis_f() > p99_bound_ms) {
    std::fprintf(stderr, "p99 %.3f ms exceeds --max-p99-ms %.3f\n",
                 res.latency.quantile_duration(0.99).to_millis_f(),
                 p99_bound_ms);
    return 1;
  }
  return 0;
}

int cmd_bench(const Args& a) {
  benchreport::ReportOptions opt;
  opt.smoke = a.flag("smoke");
  opt.json_path = a.str("json", "");
  return benchreport::run_bench_command(opt);
}

int cmd_timeline(const Args& a) {
  std::vector<ProtocolKind> protos;
  if (!parse_protocols(a.str("proto", "all"), protos)) return 2;
  for (ProtocolKind p : protos) {
    const TimelineResult r = run_single_create(p);
    std::printf("=== %s: one distributed CREATE ===\n",
                std::string(protocol_name(p)).c_str());
    std::printf("client latency %s, finished %s; writes (sync,async) total "
                "(%d,%d) critical (%d,%d); extra msgs %d (critical %d)\n\n",
                to_string(r.client_latency).c_str(),
                to_string(r.txn_complete).c_str(), r.sync_writes,
                r.async_writes, r.sync_writes_critical,
                r.async_writes_critical, r.extra_msgs,
                r.extra_msgs_critical);
    std::fputs(r.chart.c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}

int cmd_table1(const Args&) {
  TextTable table({"protocol", "total (sync,async)", "critical (sync,async)",
                   "total msgs", "critical msgs"});
  for (ProtocolKind p : kAllProtocolsExt) {
    const TimelineResult r = run_single_create(p);
    table.add_row({std::string(protocol_name(p)),
                   "(" + std::to_string(r.sync_writes) + ", " +
                       std::to_string(r.async_writes) + ")",
                   "(" + std::to_string(r.sync_writes_critical) + ", " +
                       std::to_string(r.async_writes_critical) + ")",
                   std::to_string(r.extra_msgs),
                   std::to_string(r.extra_msgs_critical)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_help(const Args&);

// ---------------------------------------------------------------------------
// Verb registry: dispatch and the help listing are generated from the same
// table, so `opc help` cannot silently miss a verb (the CLI smoke test
// asserts each name below appears in the output).
// ---------------------------------------------------------------------------
struct Verb {
  const char* name;
  const char* summary;
  int (*fn)(const Args&);
};

const Verb kVerbs[] = {
    {"storm", "create storm into hot directories (the paper's Fig. 6)",
     cmd_storm},
    {"batch", "storm with aggregated transactions (--batch N)", cmd_batch},
    {"mixed", "mixed CREATE/DELETE/RENAME over a hash-partitioned tree",
     cmd_mixed},
    {"sweep", "parameter sweep (--param X --values a,b,c)", cmd_sweep},
    {"rtstorm", "live storm on the real-time threaded backend", cmd_rtstorm},
    {"serve", "serve an RtCluster over UDS/TCP (docs/SERVING.md)", cmd_serve},
    {"loadgen", "open-loop load generator against a running opc serve",
     cmd_loadgen},
    {"chaos", "property-based fault-schedule exploration", cmd_chaos},
    {"bench", "kernel benchmark report (--json FILE, --smoke)", cmd_bench},
    {"trace", "traced storm -> causal spans + run report", cmd_trace},
    {"timeline", "message/log-write chart of one CREATE (Figs. 2-5)",
     cmd_timeline},
    {"table1", "per-protocol cost counters (Table I, + PrA extension)",
     cmd_table1},
    {"help", "this text", cmd_help},
};

int cmd_help(const Args&) {
  std::puts("opc — One Phase Commit metadata-service simulator\n");
  std::puts("subcommands:");
  for (const Verb& v : kVerbs) {
    std::printf("  %-9s %s\n", v.name, v.summary);
  }
  std::puts(
      "\n"
      "common flags (every traffic verb):\n"
      "  --protocol|--proto prn|prc|ep|1pc|pra|all|all+\n"
      "  --seed 1           deterministic workload seed\n"
      "  --duration 10s     run window (10s, 500ms, ...; or --seconds N)\n"
      "  --report FILE      write the run's RunReport JSON\n"
      "  --csv              machine-readable output\n"
      "  --participants 2   MDSs per transaction (storm/rtstorm/chaos/\n"
      "                     loadgen; >2 spreads each create over N-1\n"
      "                     workers and 1PC degrades to pra)\n"
      "\n"
      "storm/mixed/sweep flags (with defaults):\n"
      "  --nodes 2          metadata servers\n"
      "  --concurrency 100  outstanding client operations\n"
      "  --dirs 1           hot directories (all on mds0)\n"
      "  --net-latency-us 100\n"
      "  --disk-bw 409600   log device bytes/second\n"
      "  --block 8192       forced-write block size\n"
      "  --group-commit     coalesce concurrent log forces\n"
      "  --crash-period-ms 0  inject worker crashes on a period\n"
      "  --batch 1          creates per transaction (batch subcommand)\n"
      "  --trace-hash       print the run's history hash (storm)\n"
      "\n"
      "rtstorm flags (with defaults):\n"
      "  --nodes 2          one worker thread per node\n"
      "  --ops 2000         creates per node (fixed-count closed loop)\n"
      "  --concurrency 32   outstanding transactions per node\n"
      "  --disk-bw 4194304  modeled log-device bytes/second (real delays)\n"
      "  --smoke            small fast run (50 ops, concurrency 8)\n"
      "\n"
      "serve flags (with defaults):\n"
      "  --nodes 3          cluster size (one worker thread per node)\n"
      "  --uds /tmp/opc-serve.sock   Unix-domain listen path\n"
      "  --port 0 | --tcp   listen on 127.0.0.1 (0 = ephemeral)\n"
      "  --max-inflight 1024  admitted requests before BUSY shedding\n"
      "  --event-threads 1  poll loops\n"
      "  --timeout-ms 0     server-side request deadline (0 = off)\n"
      "  --disk-bw 2147483648  modeled log device (NVMe-class default)\n"
      "  --duration 0       serve window (0 = until SIGINT)\n"
      "\n"
      "loadgen flags (with defaults):\n"
      "  --uds /tmp/opc-serve.sock | --port P   target server\n"
      "  --rate 10000       offered ops/second (open loop, Poisson)\n"
      "  --threads 4        client connections\n"
      "  --dirs 3           hot directories 1..N (must be served)\n"
      "  --zipf 0           directory skew exponent (0 = uniform)\n"
      "  --creates 0.8 --mkdirs 0.1 --renames 0.1   op mix\n"
      "  --max-p99-ms 0     fail the run above this p99 (0 = off)\n"
      "  --participants 2   >2 sends wide creates (<= server --nodes)\n"
      "\n"
      "chaos flags (with defaults):\n"
      "  --protocol 1pc     one protocol per exploration\n"
      "  --schedules 100    random fault schedules to explore\n"
      "  --seed 42          master seed (equal seeds => identical output)\n"
      "  --max-faults 4     faults per random schedule\n"
      "  --participants 2   MDSs per transaction (raises --nodes if needed)\n"
      "  --systematic       also enumerate trace-keyed crash points\n"
      "  --seconds 8        workload window per schedule\n"
      "  --bug              inject the skip-fencing bug (oracle demo)\n"
      "  --out chaos.repro  minimal-repro output file on failure\n"
      "  --replay FILE      re-run one repro file deterministically\n"
      "\n"
      "trace actions (seeded 2 s storm unless --seconds given):\n"
      "  trace report [--json REPORT.json]   full run report\n"
      "  trace top [--n 10]                  slowest transactions\n"
      "  trace phases                        per-phase time breakdown\n"
      "  trace diff A.json B.json            compare two REPORT.json files\n"
      "  trace --export chrome out.json      Perfetto/chrome trace_event\n"
      "  trace --export spans out.bin        compact binary span log\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc < 2 ? "help" : argv[1];
  const Args args(argc, argv, 2);
  if (!args.ok()) return 2;
  for (const Verb& v : kVerbs) {
    if (cmd == v.name) return v.fn(args);
  }
  if (cmd == "--help" || cmd == "-h") return cmd_help(args);
  std::fprintf(stderr, "unknown subcommand '%s'\n\n", cmd.c_str());
  cmd_help(args);
  return 2;
}
