// Shared flag handling for the opc CLI.
//
// Every traffic-generating verb (storm, rtstorm, loadgen, serve) parses
// `--protocol/--proto`, `--seed`, `--duration|--seconds` and `--report`
// through CommonFlags so the verbs cannot drift apart in spelling or
// semantics; the CLI smoke test (tests/cli/cli_smoke_test.cc) additionally
// pins that the help output lists every registered verb.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "acp/protocol.h"
#include "sim/time.h"

namespace opc::cli {

// ---------------------------------------------------------------------------
// Tiny argument parser: --key value pairs after the subcommand.
// ---------------------------------------------------------------------------
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc;) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        // Bare tokens are positional operands (e.g. the output file of
        // `opc trace --export chrome out.json`, or the two inputs of
        // `opc trace diff A.json B.json`).
        pos_.emplace_back(argv[i]);
        i += 1;
        continue;
      }
      // `--flag value` consumes two arguments; a `--flag` followed by
      // another `--flag` (or nothing) is boolean (e.g. --csv --smoke).
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        kv_[argv[i] + 2] = argv[i + 1];
        i += 2;
      } else {
        kv_[argv[i] + 2] = "true";
        i += 1;
      }
    }
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }
  [[nodiscard]] std::int64_t num(const std::string& key,
                                 std::int64_t dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::atoll(it->second.c_str());
  }
  [[nodiscard]] double real(const std::string& key, double dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::atof(it->second.c_str());
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    auto it = kv_.find(key);
    return it != kv_.end() && it->second != "false" && it->second != "0";
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kv_.count(key) != 0;
  }
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return pos_;
  }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> pos_;
  bool ok_ = true;
};

inline bool parse_protocols(const std::string& s,
                            std::vector<ProtocolKind>& out) {
  if (s == "all") {
    out.assign(std::begin(kAllProtocols), std::end(kAllProtocols));
    return true;
  }
  if (s == "all+") {
    out.assign(std::begin(kAllProtocolsExt), std::end(kAllProtocolsExt));
    return true;
  }
  if (s == "prn") out = {ProtocolKind::kPrN};
  else if (s == "prc") out = {ProtocolKind::kPrC};
  else if (s == "ep") out = {ProtocolKind::kEP};
  else if (s == "1pc") out = {ProtocolKind::kOnePC};
  else if (s == "pra") out = {ProtocolKind::kPrA};
  else return false;
  return true;
}

/// Parses "10s" / "500ms" / "250us" / "2m" / bare seconds ("10", "7.5").
inline bool parse_duration(const std::string& s, Duration& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return false;
  const std::string unit(end);
  if (unit.empty() || unit == "s") out = Duration::from_seconds_f(v);
  else if (unit == "ms") out = Duration::from_seconds_f(v / 1e3);
  else if (unit == "us") out = Duration::from_seconds_f(v / 1e6);
  else if (unit == "m") out = Duration::from_seconds_f(v * 60.0);
  else return false;
  return true;
}

/// Participants per transaction, one spelling for every traffic verb
/// (storm/rtstorm/chaos/loadgen): `--participants N`, N in [2, 64].
/// 2 is the paper's two-MDS transaction; wider values spread each create
/// over N-1 distinct worker nodes (and 1PC degrades to presumed-abort,
/// src/acp/protocol.h).
inline bool parse_participants(const Args& a, std::uint32_t& out) {
  const std::int64_t v = a.num("participants", 2);
  if (v < 2 || v > 64) {
    std::fprintf(stderr, "--participants must be in [2, 64]\n");
    return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// Flags every traffic verb shares.  `--protocol` and `--proto` are
/// synonyms everywhere; `--duration 10s` and the legacy `--seconds 10`
/// both feed `duration`; `--report FILE` (legacy `--json FILE` where it
/// existed) names a RunReport JSON output; `--participants N` widens every
/// transaction (see parse_participants).
struct CommonFlags {
  std::vector<ProtocolKind> protocols;
  std::uint64_t seed = 1;
  Duration duration = Duration::zero();
  std::string report;
  bool csv = false;
  std::uint32_t participants = 2;
};

inline bool parse_common(const Args& a, const char* default_proto,
                         std::int64_t default_seconds, CommonFlags& out) {
  if (!parse_protocols(a.str("protocol", a.str("proto", default_proto)),
                       out.protocols)) {
    std::fprintf(stderr,
                 "unknown --protocol (prn|prc|ep|1pc|pra|all|all+)\n");
    return false;
  }
  out.seed = static_cast<std::uint64_t>(a.num("seed", 1));
  const std::string dur = a.str("duration", "");
  if (!dur.empty()) {
    if (!parse_duration(dur, out.duration)) {
      std::fprintf(stderr, "bad --duration '%s' (want e.g. 10s, 500ms)\n",
                   dur.c_str());
      return false;
    }
  } else {
    out.duration = Duration::seconds(a.num("seconds", default_seconds));
  }
  out.report = a.str("report", a.str("json", ""));
  out.csv = a.flag("csv");
  return parse_participants(a, out.participants);
}

}  // namespace opc::cli
